// Kernel microbenchmarks (Sec. IV): per-element throughput of the ADER time
// predictor, the volume + local-surface update and the neighbor update, for
// dense block-trimmed kernels (single simulation) vs fully sparse kernels
// (fused simulations), across convergence orders. The fused sparse path
// removes the zero operations of the dense path — the paper reports 59.8%
// zeros at O = 5 with three mechanisms.
//
// Every benchmark takes a trailing `vector` argument (0 = scalar reference
// backend, 1 = explicit-SIMD vector backend; docs/KERNELS.md), so
// BENCH_kernel.json carries per-backend A/B rows both for the raw
// dispatched small-GEMM kernels (smallGemm* below, including the fused
// W = 4 shapes the backend acceptance gate compares) and for the full ADER
// updates. Both backends produce bitwise-identical results — these rows
// measure throughput only.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "kernels/ader_kernels.hpp"
#include "kernels/kernel_setup.hpp"
#include "linalg/small_gemm_dispatch.hpp"
#include "mesh/box_gen.hpp"
#include "mesh/geometry.hpp"
#include "physics/attenuation.hpp"

using namespace nglts;

namespace {

linalg::KernelBackend backendArg(const benchmark::State& state, int idx) {
  return state.range(idx) ? linalg::KernelBackend::kVector : linalg::KernelBackend::kScalar;
}

struct Fixture {
  mesh::TetMesh mesh;
  std::vector<mesh::ElementGeometry> geo;
  std::vector<physics::Material> mats;
  std::vector<kernels::ElementData<float>> ed;

  explicit Fixture(int_t mechanisms) {
    mesh::BoxSpec spec;
    spec.planes[0] = mesh::uniformPlanes(0, 1, 3);
    spec.planes[1] = mesh::uniformPlanes(0, 1, 3);
    spec.planes[2] = mesh::uniformPlanes(0, 1, 3);
    spec.periodic = {true, true, true};
    spec.jitter = 0.15;
    mesh = mesh::generateBox(spec);
    geo = mesh::computeGeometry(mesh);
    physics::Material m =
        mechanisms > 0 ? physics::viscoElasticMaterial(2600, 4000, 2000, 120, 40, mechanisms, 1.0)
                       : physics::elasticMaterial(2600, 4000, 2000);
    mats.assign(mesh.numElements(), m);
    ed = kernels::buildAllElementData<float>(mesh, geo, mats, mechanisms);
  }
};

Fixture& fixture(int_t mechs) {
  static Fixture elastic(0);
  static Fixture anelastic(3);
  return mechs ? anelastic : elastic;
}

template <int W>
void localUpdate(benchmark::State& state) {
  const int_t order = state.range(0);
  const bool sparse = state.range(1);
  const int_t mechs = state.range(2);
  auto& f = fixture(mechs);
  kernels::AderKernels<float, W> kern(order, mechs, sparse, f.mats[0].omega,
                                      backendArg(state, 3));
  auto s = kern.makeScratch();
  aligned_vector<float> q(kern.dofsPerElement()), b1(kern.elasticDofsPerElement());
  std::mt19937 rng(1);
  std::uniform_real_distribution<float> uni(-1, 1);
  for (auto& v : q) v = uni(rng);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += kern.timePredict(f.ed[0], q.data(), 1e-3f, s.timeInt.data(), b1.data(), nullptr,
                              nullptr, false, s);
    flops += kern.volumeAndLocalSurface(f.ed[0], s.timeInt.data(), q.data(), s);
    benchmark::DoNotOptimize(q.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(static_cast<double>(flops) * 1e-9,
                                                benchmark::Counter::kIsRate);
  state.counters["el_updates/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * W,
                         benchmark::Counter::kIsRate);
}

template <int W>
void neighborUpdate(benchmark::State& state) {
  const int_t order = state.range(0);
  const bool sparse = state.range(1);
  auto& f = fixture(3);
  kernels::AderKernels<float, W> kern(order, 3, sparse, f.mats[0].omega,
                                      backendArg(state, 2));
  auto s = kern.makeScratch();
  aligned_vector<float> q(kern.dofsPerElement()), nb(kern.elasticDofsPerElement());
  std::mt19937 rng(2);
  std::uniform_real_distribution<float> uni(-1, 1);
  for (auto& v : nb) v = uni(rng);
  const auto& fi = f.mesh.faces[0][0];
  for (auto _ : state) {
    kern.neighborContribution(f.ed[0], 0, fi.neighborFace, fi.perm, nb.data(), q.data(), s);
    benchmark::DoNotOptimize(q.data());
  }
}

void compress(benchmark::State& state) {
  const int_t order = state.range(0);
  auto& f = fixture(3);
  kernels::AderKernels<float, 1> kern(order, 3, false, f.mats[0].omega, backendArg(state, 1));
  aligned_vector<float> buf(kern.elasticDofsPerElement(), 0.5f), out(kern.faceDataSize());
  for (auto _ : state) {
    kern.compressBuffer(0, 0, buf.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}

// ---------------------------------------------------------------------------
// Raw dispatched small-GEMM kernels, scalar vs vector backend A/B: the two
// operator shapes (star / right) in dense and CSR form at the real DG
// operand shapes — an element star Jacobian (9 x 9, static zero blocks) and
// the order's stiffness operator (B x B, modal sparsity). The W = 4 rows of
// smallGemmStar{Dense,Csr} / smallGemmRight{Dense,Csr} are the backend
// acceptance gate (vector >= 1.3x scalar, docs/KERNELS.md).
// ---------------------------------------------------------------------------

template <typename Real>
linalg::Matrix starMatrix(const kernels::ElementData<Real>& ed) {
  linalg::Matrix m(9, 9);
  for (int_t r = 0; r < 9; ++r)
    for (int_t c = 0; c < 9; ++c) m(r, c) = ed.starE[0][r * 9 + c];
  return m;
}

aligned_vector<float> randomOperand(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> uni(-1, 1);
  aligned_vector<float> v(n);
  for (auto& x : v) x = uni(rng);
  return v;
}

template <int W>
void smallGemmStarDense(benchmark::State& state) {
  const int_t nb = numBasis3d(state.range(0));
  const auto& ops = linalg::smallGemmOps<float, W>(backendArg(state, 1));
  const linalg::SmallOp<float> star(starMatrix(fixture(3).ed[0]));
  const auto d = randomOperand(static_cast<std::size_t>(9) * nb * W, 21);
  aligned_vector<float> o(d.size(), 0.0f);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.starDense(9, 9, nb, nb, star.dense.data(), d.data(), o.data());
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <int W>
void smallGemmStarCsr(benchmark::State& state) {
  const int_t nb = numBasis3d(state.range(0));
  const auto& ops = linalg::smallGemmOps<float, W>(backendArg(state, 1));
  const linalg::SmallOp<float> star(starMatrix(fixture(3).ed[0]));
  const auto d = randomOperand(static_cast<std::size_t>(9) * nb * W, 22);
  aligned_vector<float> o(d.size(), 0.0f);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.starCsr(star.csr, nb, nb, d.data(), o.data());
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <int W>
void smallGemmRightDense(benchmark::State& state) {
  const int_t order = state.range(0);
  const int_t nb = numBasis3d(order);
  const auto& ops = linalg::smallGemmOps<float, W>(backendArg(state, 1));
  const auto gm = basis::buildGlobalMatrices(order);
  const linalg::SmallOp<float> stiff(gm->kXi[0]);
  const auto d = randomOperand(static_cast<std::size_t>(9) * nb * W, 23);
  aligned_vector<float> o(d.size(), 0.0f);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.rightDense(9, nb, nb, stiff.cols, d.data(), stiff.dense.data(), o.data(), nb,
                            nb);
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <int W>
void smallGemmRightCsr(benchmark::State& state) {
  const int_t order = state.range(0);
  const int_t nb = numBasis3d(order);
  const auto& ops = linalg::smallGemmOps<float, W>(backendArg(state, 1));
  const auto gm = basis::buildGlobalMatrices(order);
  const linalg::SmallOp<float> stiff(gm->kXi[0]);
  const auto d = randomOperand(static_cast<std::size_t>(9) * nb * W, 24);
  aligned_vector<float> o(d.size(), 0.0f);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.rightCsr(9, nb, stiff.csr, d.data(), o.data(), nb, nb);
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(localUpdate<1>)
    ->ArgsProduct({{3, 4, 5}, {0, 1}, {0, 3}, {0, 1}})
    ->ArgNames({"order", "sparse", "mechs", "vector"});
BENCHMARK(localUpdate<16>)
    ->ArgsProduct({{3, 4, 5}, {1}, {3}, {0, 1}})
    ->ArgNames({"order", "sparse", "mechs", "vector"});
BENCHMARK(neighborUpdate<1>)
    ->ArgsProduct({{3, 4, 5}, {0, 1}, {0, 1}})
    ->ArgNames({"order", "sparse", "vector"});
BENCHMARK(neighborUpdate<16>)
    ->ArgsProduct({{4}, {1}, {0, 1}})
    ->ArgNames({"order", "sparse", "vector"});
BENCHMARK(compress)->ArgsProduct({{4, 5}, {0, 1}})->ArgNames({"order", "vector"});

// Raw small-GEMM backend A/B rows (scalar vs vector per shape; the W = 4
// dense + CSR rows are the acceptance gate for the vector backend).
BENCHMARK_TEMPLATE(smallGemmStarDense, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmStarDense, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmStarDense, 16)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, 16)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmRightDense, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmRightDense, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "vector"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, 16)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "vector"});

// BENCHMARK_MAIN with a default JSON artifact: unless the caller passes its
// own --benchmark_out, results also land in BENCH_kernel.json (the
// machine-readable perf trajectory consumed by bench/run_benches.sh).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool hasOut = false, hasFmt = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--benchmark_out=", 0) == 0) hasOut = true;
    if (a.rfind("--benchmark_out_format", 0) == 0) hasFmt = true;
  }
  static std::string outFlag = "--benchmark_out=BENCH_kernel.json";
  static std::string fmtFlag = "--benchmark_out_format=json";
  if (!hasOut) {
    args.push_back(outFlag.data());
    if (!hasFmt) args.push_back(fmtFlag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!hasOut) std::printf("wrote BENCH_kernel.json\n");
  return 0;
}

// Kernel microbenchmarks (Sec. IV): per-element throughput of the ADER time
// predictor, the volume + local-surface update and the neighbor update, for
// dense block-trimmed kernels (single simulation) vs fully sparse kernels
// (fused simulations), across convergence orders. The fused sparse path
// removes the zero operations of the dense path — the paper reports 59.8%
// zeros at O = 5 with three mechanisms.
//
// Every benchmark takes a trailing `backend` argument (0 = scalar reference
// backend, 1 = explicit-SIMD vector backend, 2 = specialized = vector plus
// compile-time-sparsity kernels for registered patterns; docs/KERNELS.md),
// so BENCH_kernel.json carries per-backend A/B rows both for the raw
// dispatched small-GEMM kernels (smallGemm* below, including the fused
// W = 4 shapes the backend acceptance gate compares) and for the full ADER
// updates. Backend 2 rows only exist for (order, W) combinations whose CSR
// pattern is in the committed table (orders 3/4, W > 1) — the acceptance
// gate is specialized >= vector on those CSR star/right rows. All backends
// produce bitwise-identical results — these rows measure throughput only.
//
// The JSON context records the resolved ISA ("kernel_isa") and precision
// ("precision": kernel_micro measures the f32 kernels, the precision the
// fused production runs use; f64 solver rows come from the scenario
// benches via NGLTS_PRECISION) so every row is attributable.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "basis/global_matrices.hpp"
#include "kernels/ader_kernels.hpp"
#include "kernels/kernel_setup.hpp"
#include "linalg/small_gemm_dispatch.hpp"
#include "linalg/small_gemm_specialized.hpp"
#include "mesh/box_gen.hpp"
#include "mesh/geometry.hpp"
#include "physics/attenuation.hpp"
#include "physics/jacobians.hpp"

using namespace nglts;

namespace {

linalg::KernelBackend backendArg(const benchmark::State& state, int idx) {
  switch (state.range(idx)) {
    case 2: return linalg::KernelBackend::kSpecialized;
    case 1: return linalg::KernelBackend::kVector;
    default: return linalg::KernelBackend::kScalar;
  }
}

struct Fixture {
  mesh::TetMesh mesh;
  std::vector<mesh::ElementGeometry> geo;
  std::vector<physics::Material> mats;
  std::vector<kernels::ElementData<float>> ed;

  explicit Fixture(int_t mechanisms) {
    mesh::BoxSpec spec;
    spec.planes[0] = mesh::uniformPlanes(0, 1, 3);
    spec.planes[1] = mesh::uniformPlanes(0, 1, 3);
    spec.planes[2] = mesh::uniformPlanes(0, 1, 3);
    spec.periodic = {true, true, true};
    spec.jitter = 0.15;
    mesh = mesh::generateBox(spec);
    geo = mesh::computeGeometry(mesh);
    physics::Material m =
        mechanisms > 0 ? physics::viscoElasticMaterial(2600, 4000, 2000, 120, 40, mechanisms, 1.0)
                       : physics::elasticMaterial(2600, 4000, 2000);
    mats.assign(mesh.numElements(), m);
    ed = kernels::buildAllElementData<float>(mesh, geo, mats, mechanisms);
  }
};

Fixture& fixture(int_t mechs) {
  static Fixture elastic(0);
  static Fixture anelastic(3);
  return mechs ? anelastic : elastic;
}

template <int W>
void localUpdate(benchmark::State& state) {
  const int_t order = state.range(0);
  const bool sparse = state.range(1);
  const int_t mechs = state.range(2);
  auto& f = fixture(mechs);
  kernels::AderKernels<float, W> kern(order, mechs, sparse, f.mats[0].omega,
                                      backendArg(state, 3));
  auto s = kern.makeScratch();
  aligned_vector<float> q(kern.dofsPerElement()), b1(kern.elasticDofsPerElement());
  std::mt19937 rng(1);
  std::uniform_real_distribution<float> uni(-1, 1);
  for (auto& v : q) v = uni(rng);
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += kern.timePredict(f.ed[0], q.data(), 1e-3f, s.timeInt.data(), b1.data(), nullptr,
                              nullptr, false, s);
    flops += kern.volumeAndLocalSurface(f.ed[0], s.timeInt.data(), q.data(), s);
    benchmark::DoNotOptimize(q.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(static_cast<double>(flops) * 1e-9,
                                                benchmark::Counter::kIsRate);
  state.counters["el_updates/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * W,
                         benchmark::Counter::kIsRate);
}

template <int W>
void neighborUpdate(benchmark::State& state) {
  const int_t order = state.range(0);
  const bool sparse = state.range(1);
  auto& f = fixture(3);
  kernels::AderKernels<float, W> kern(order, 3, sparse, f.mats[0].omega,
                                      backendArg(state, 2));
  auto s = kern.makeScratch();
  aligned_vector<float> q(kern.dofsPerElement()), nb(kern.elasticDofsPerElement());
  std::mt19937 rng(2);
  std::uniform_real_distribution<float> uni(-1, 1);
  for (auto& v : nb) v = uni(rng);
  const auto& fi = f.mesh.faces[0][0];
  for (auto _ : state) {
    kern.neighborContribution(f.ed[0], 0, fi.neighborFace, fi.perm, nb.data(), q.data(), s);
    benchmark::DoNotOptimize(q.data());
  }
}

void compress(benchmark::State& state) {
  const int_t order = state.range(0);
  auto& f = fixture(3);
  kernels::AderKernels<float, 1> kern(order, 3, false, f.mats[0].omega, backendArg(state, 1));
  aligned_vector<float> buf(kern.elasticDofsPerElement(), 0.5f), out(kern.faceDataSize());
  for (auto _ : state) {
    kern.compressBuffer(0, 0, buf.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}

// ---------------------------------------------------------------------------
// Raw dispatched small-GEMM kernels, scalar vs vector backend A/B: the two
// operator shapes (star / right) in dense and CSR form at the real DG
// operand shapes — an element star Jacobian (9 x 9, static zero blocks) and
// the order's stiffness operator (B x B, modal sparsity). The W = 4 rows of
// smallGemmStar{Dense,Csr} / smallGemmRight{Dense,Csr} are the backend
// acceptance gate (vector >= 1.3x scalar, docs/KERNELS.md).
// ---------------------------------------------------------------------------

template <typename Real>
linalg::Matrix starMatrix(const kernels::ElementData<Real>& ed) {
  linalg::Matrix m(9, 9);
  for (int_t r = 0; r < 9; ++r)
    for (int_t c = 0; c < 9; ++c) m(r, c) = ed.starE[0][r * 9 + c];
  return m;
}

/// The elastic star-operator *family* pattern (union of the three direction
/// Jacobians — the pattern registered in the specialized table) with
/// pattern-preserving random values, so scalar/vector/specialized CSR star
/// rows all measure the identical operator.
linalg::Matrix starUnionMatrix() {
  const physics::Material mat = physics::elasticMaterial(2700.0, 6000.0, 3464.0);
  linalg::Matrix u(9, 9);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> uni(0.1, 2.0);
  for (int_t d = 0; d < 3; ++d) {
    const linalg::Matrix j = physics::elasticJacobian(mat, d);
    for (int_t r = 0; r < 9; ++r)
      for (int_t c = 0; c < 9; ++c)
        if (j(r, c) != 0.0 && u(r, c) == 0.0) u(r, c) = uni(rng);
  }
  return u;
}

template <typename Real>
aligned_vector<Real> randomOperand(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<Real> uni(-1, 1);
  aligned_vector<Real> v(n);
  for (auto& x : v) x = uni(rng);
  return v;
}

// The raw smallGemm* benches are Real-templated: the <float, W> vs
// <double, W> registrations at matching W are the fp32-vs-f64 throughput
// A/B (per-row precision is the template type in the benchmark name).
template <typename Real, int W>
void smallGemmStarDense(benchmark::State& state) {
  const int_t nb = numBasis3d(state.range(0));
  const auto& ops = linalg::smallGemmOps<Real, W>(backendArg(state, 1));
  const linalg::SmallOp<Real> star(starMatrix(fixture(3).ed[0]));
  const auto d = randomOperand<Real>(static_cast<std::size_t>(9) * nb * W, 21);
  aligned_vector<Real> o(d.size(), Real(0));
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.starDense(9, 9, nb, nb, star.dense.data(), d.data(), o.data());
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <typename Real, int W>
void smallGemmStarCsr(benchmark::State& state) {
  const int_t nb = numBasis3d(state.range(0));
  const auto& ops = linalg::smallGemmOps<Real, W>(backendArg(state, 1));
  const linalg::SmallOp<Real> star(starUnionMatrix());
  linalg::SpecializedStarCsrFn<Real> spec = nullptr;
  if (state.range(1) == 2) {
    spec = linalg::findSpecializedStarCsr<Real, W>(star.csr);
    if (!spec) {
      state.SkipWithError("star pattern not registered for this W");
      return;
    }
  }
  const auto d = randomOperand<Real>(static_cast<std::size_t>(9) * nb * W, 22);
  aligned_vector<Real> o(d.size(), Real(0));
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += spec ? spec(star.csr, nb, nb, d.data(), o.data())
                  : ops.starCsr(star.csr, nb, nb, d.data(), o.data());
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <typename Real, int W>
void smallGemmRightDense(benchmark::State& state) {
  const int_t order = state.range(0);
  const int_t nb = numBasis3d(order);
  const auto& ops = linalg::smallGemmOps<Real, W>(backendArg(state, 1));
  const auto gm = basis::buildGlobalMatrices(order);
  const linalg::SmallOp<Real> stiff(gm->kXi[0]);
  const auto d = randomOperand<Real>(static_cast<std::size_t>(9) * nb * W, 23);
  aligned_vector<Real> o(d.size(), Real(0));
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += ops.rightDense(9, nb, nb, stiff.cols, d.data(), stiff.dense.data(), o.data(), nb,
                            nb);
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

template <typename Real, int W>
void smallGemmRightCsr(benchmark::State& state) {
  const int_t order = state.range(0);
  const int_t nb = numBasis3d(order);
  const auto& ops = linalg::smallGemmOps<Real, W>(backendArg(state, 1));
  const auto gm = basis::buildGlobalMatrices(order);
  const linalg::SmallOp<Real> stiff(gm->kXi[0]);
  linalg::SpecializedRightCsrFn<Real> spec = nullptr;
  if (state.range(1) == 2) {
    spec = linalg::findSpecializedRightCsr<Real, W>(stiff.csr);
    if (!spec) {
      state.SkipWithError("stiffness pattern not registered for this order/W");
      return;
    }
  }
  const auto d = randomOperand<Real>(static_cast<std::size_t>(9) * nb * W, 24);
  aligned_vector<Real> o(d.size(), Real(0));
  std::uint64_t flops = 0;
  for (auto _ : state) {
    flops += spec ? spec(9, nb, stiff.csr, d.data(), o.data(), nb, nb)
                  : ops.rightCsr(9, nb, stiff.csr, d.data(), o.data(), nb, nb);
    benchmark::DoNotOptimize(o.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(localUpdate<1>)
    ->ArgsProduct({{3, 4, 5}, {0, 1}, {0, 3}, {0, 1}})
    ->ArgNames({"order", "sparse", "mechs", "backend"});
BENCHMARK(localUpdate<16>)
    ->ArgsProduct({{3, 4, 5}, {1}, {3}, {0, 1}})
    ->ArgNames({"order", "sparse", "mechs", "backend"});
// Specialized ADER rows only where the stiffness patterns are registered
// (orders 3/4; order 5 would silently measure the per-operator fallback).
BENCHMARK(localUpdate<16>)
    ->ArgsProduct({{3, 4}, {1}, {3}, {2}})
    ->ArgNames({"order", "sparse", "mechs", "backend"});
BENCHMARK(neighborUpdate<1>)
    ->ArgsProduct({{3, 4, 5}, {0, 1}, {0, 1}})
    ->ArgNames({"order", "sparse", "backend"});
BENCHMARK(neighborUpdate<16>)
    ->ArgsProduct({{4}, {1}, {0, 1, 2}})
    ->ArgNames({"order", "sparse", "backend"});
BENCHMARK(compress)->ArgsProduct({{4, 5}, {0, 1}})->ArgNames({"order", "backend"});

// Raw small-GEMM backend A/B rows (scalar vs vector vs specialized per
// shape; the W = 4 dense + CSR rows are the acceptance gate for the vector
// backend, the backend = 2 CSR rows gate specialized >= vector, and the
// <double, 4> vs <float, 4> pairs are the fp32-vs-f64 throughput A/B).
BENCHMARK_TEMPLATE(smallGemmStarDense, float, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarDense, float, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarDense, float, 16)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarDense, double, 4)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, float, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
// The star pattern (elastic 9 x 9 union) is order-independent, so the
// specialized arm exists for every benched order at W > 1.
BENCHMARK_TEMPLATE(smallGemmStarCsr, float, 4)
    ->ArgsProduct({{4, 5}, {0, 1, 2}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, float, 16)
    ->ArgsProduct({{4}, {0, 1, 2}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmStarCsr, double, 4)
    ->ArgsProduct({{4}, {0, 1, 2}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightDense, float, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightDense, float, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightDense, double, 4)
    ->ArgsProduct({{4}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, float, 1)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, float, 4)
    ->ArgsProduct({{4, 5}, {0, 1}})
    ->ArgNames({"order", "backend"});
// Stiffness patterns are registered for orders 3/4 only.
BENCHMARK_TEMPLATE(smallGemmRightCsr, float, 4)
    ->ArgsProduct({{3, 4}, {2}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, float, 16)
    ->ArgsProduct({{4}, {0, 1, 2}})
    ->ArgNames({"order", "backend"});
BENCHMARK_TEMPLATE(smallGemmRightCsr, double, 4)
    ->ArgsProduct({{4}, {0, 1, 2}})
    ->ArgNames({"order", "backend"});

// BENCHMARK_MAIN with a default JSON artifact: unless the caller passes its
// own --benchmark_out, results also land in BENCH_kernel.json (the
// machine-readable perf trajectory consumed by bench/run_benches.sh).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool hasOut = false, hasFmt = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--benchmark_out=", 0) == 0) hasOut = true;
    if (a.rfind("--benchmark_out_format", 0) == 0) hasFmt = true;
  }
  static std::string outFlag = "--benchmark_out=BENCH_kernel.json";
  static std::string fmtFlag = "--benchmark_out_format=json";
  if (!hasOut) {
    args.push_back(outFlag.data());
    if (!hasFmt) args.push_back(fmtFlag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  // Attribution context: the ISA the vector/specialized kernels resolve to
  // on this host (per-row precision is the <float|double, W> template type
  // in each benchmark name).
  benchmark::AddCustomContext("kernel_isa", linalg::detectCpuSimd().isa);
  benchmark::AddCustomContext(
      "kernel_backend_vector",
      linalg::resolvedKernelBackendLabel(linalg::KernelBackend::kAuto));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!hasOut) std::printf("wrote BENCH_kernel.json\n");
  return 0;
}

// Setup-amortization bench for the ensemble batch engine (BENCH_batch.json):
// the same ensemble of perturbed quickstart requests executed three ways —
//
//   independent    one engine per request (no memoization, no fusion): every
//                  request pays the full preprocessing pipeline,
//   batch-w1       one engine, memoized preprocessing, lane packing off,
//   batch-w4       one engine, memoized preprocessing, fused width up to 4.
//
// Rows record setup/solve/total seconds, per-request amortized cost and how
// often the preprocessing pipeline actually ran. The batch rows must show
// pipeline_builds == number of *distinct* material configurations, not the
// request count — that is the engine's amortization claim (results stay
// bitwise-identical across all three modes; tests/test_batch_engine.cpp
// asserts it, this bench measures it).
#include <cstdio>
#include <string>
#include <vector>

#include "batch/batch_engine.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace nglts;

namespace {

std::vector<batch::ScenarioRequest> makeRequests(idx_t n) {
  std::vector<batch::ScenarioRequest> reqs(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    auto& r = reqs[static_cast<std::size_t>(i)];
    r.id = "req" + std::to_string(i);
    r.sourceScale = 1.0 + 0.25 * static_cast<double>(i);
    r.materialScale = (i % 4 == 3) ? 1.1 : 1.0; // two distinct material groups
    r.receiverOffset = {5.0 * static_cast<double>(i), 0.0, 0.0};
  }
  return reqs;
}

batch::BatchConfig makeConfig(double scale, int_t maxWidth) {
  batch::BatchConfig cfg = batch::quickstartBatchConfig();
  cfg.endTime = 0.4;
  cfg.maxFusedWidth = maxWidth;
  // scale > 1 = finer mesh (edge bounds shrink), matching --scale on the CLI.
  cfg.pipeline.minEdge /= scale;
  cfg.pipeline.maxEdge /= scale;
  cfg.sim.kernelBackend = bench::benchKernelBackend();
  cfg.sim.precision = bench::benchPrecision();
  return cfg;
}

struct ModeResult {
  double setup = 0.0, solve = 0.0;
  idx_t builds = 0;
  idx_t runs = 0;
};

ModeResult runBatch(const std::vector<batch::ScenarioRequest>& reqs, double scale,
                    int_t maxWidth) {
  const seismo::LayeredModel model = batch::quickstartBatchModel();
  batch::BatchEngine engine(model, makeConfig(scale, maxWidth),
                            batch::quickstartBatchModelKey());
  engine.add(reqs);
  const batch::BatchStats st = engine.run(nullptr);
  return {st.setupSeconds, st.solveSeconds, st.pipelineBuilds, st.runs};
}

ModeResult runIndependent(const std::vector<batch::ScenarioRequest>& reqs, double scale) {
  // One fresh engine per request: the memoization cache never carries over,
  // so every request pays the full pipeline — the pre-batch workflow.
  ModeResult total;
  const seismo::LayeredModel model = batch::quickstartBatchModel();
  for (const batch::ScenarioRequest& r : reqs) {
    batch::BatchEngine engine(model, makeConfig(scale, 1), batch::quickstartBatchModelKey());
    engine.add(r);
    const batch::BatchStats st = engine.run(nullptr);
    total.setup += st.setupSeconds;
    total.solve += st.solveSeconds;
    total.builds += st.pipelineBuilds;
    total.runs += st.runs;
  }
  return total;
}

void addRow(bench::JsonReport& report, const std::string& mode, idx_t requests,
            const ModeResult& r) {
  const double perReq = (r.setup + r.solve) / static_cast<double>(requests);
  report.beginRow();
  report.rowSet("mode", mode);
  report.rowSet("requests", static_cast<double>(requests));
  report.rowSet("runs", static_cast<double>(r.runs));
  report.rowSet("pipeline_builds", static_cast<double>(r.builds));
  report.rowSet("setup_s", r.setup);
  report.rowSet("solve_s", r.solve);
  report.rowSet("total_s", r.setup + r.solve);
  report.rowSet("per_request_s", perReq);
  std::printf("%-12s %3lld requests %2lld runs %2lld builds  setup %6.2f s  solve %6.2f s"
              "  %.3f s/request\n",
              mode.c_str(), static_cast<long long>(requests), static_cast<long long>(r.runs),
              static_cast<long long>(r.builds), r.setup, r.solve, perReq);
}

} // namespace

int main() {
  const double scale = 0.5 * bench::benchScale(); // coarse box: setup-dominated
  const idx_t requests = 8;
  const std::vector<batch::ScenarioRequest> reqs = makeRequests(requests);

  bench::JsonReport report;
  report.set("bench", "batch_throughput");
  report.set("kernel", bench::benchKernelLabel());
  report.set("precision", solver::precisionName(bench::benchPrecision()));
  report.set("scale", scale);
  report.set("requests", static_cast<double>(requests));

  std::printf("batch setup-amortization, %lld requests, scale %.2f\n",
              static_cast<long long>(requests), scale);
  addRow(report, "independent", requests, runIndependent(reqs, scale));
  addRow(report, "batch-w1", requests, runBatch(reqs, scale, 1));
  addRow(report, "batch-w4", requests, runBatch(reqs, scale, 4));

  report.write("BENCH_batch.json");
  return 0;
}

// Reproduces the "cost of anelasticity" observation of Sec. VII-B: running
// the LOH.3 setting viscoelastically with three relaxation mechanisms costs
// about 1.8x the purely elastic run (LTS, single forward simulation).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "solver/simulation.hpp"
#include "solver/threading.hpp"

using namespace nglts;

namespace {

double runOnce(int_t mechanisms, double scale, double tEnd) {
  bench::Loh3Scenario sc(scale, mechanisms);
  solver::SimConfig cfg;
  cfg.order = 4;
  cfg.mechanisms = mechanisms;
  cfg.scheme = solver::TimeScheme::kLtsNextGen;
  cfg.numClusters = 3;
  cfg.attenuationFreq = 1.0;
  cfg.numThreads = solver::hardwareThreads(); // timing bench: all cores
  solver::Simulation<float, 1> sim(std::move(sc.mesh), std::move(sc.materials), cfg);
  sim.setInitialCondition([](const std::array<double, 3>& x, int_t, double* q9) {
    for (int_t v = 0; v < 9; ++v) q9[v] = 0.0;
    const double r2 = (x[0] - 4000.0) * (x[0] - 4000.0) + (x[1] - 4000.0) * (x[1] - 4000.0) +
                      (x[2] + 1500.0) * (x[2] + 1500.0);
    q9[kVelU] = std::exp(-r2 / 1e6);
  });
  sim.run(sim.cycleDt());
  const auto st = sim.run(tEnd);
  return st.seconds / st.simulatedTime;
}

} // namespace

int main() {
  const double scale = bench::benchScale();
  const double tEnd = 0.05 * scale;
  Table table({"mechanisms", "N_q", "wall s per simulated s", "cost vs elastic"});
  double elastic = 0.0;
  for (int_t m : {0, 1, 2, 3}) {
    const double cost = runOnce(m, scale, tEnd);
    if (m == 0) elastic = cost;
    table.addRow({std::to_string(m), std::to_string(numVars(m)), formatNumber(cost, "%.3f"),
                  formatNumber(cost / elastic, "%.2f")});
  }
  std::printf("%s\n", table.str().c_str());
  table.writeCsv("anelastic_cost.csv");
  std::printf("paper: ~1.8x for three mechanisms (LTS, single simulation)\n");
  return 0;
}
